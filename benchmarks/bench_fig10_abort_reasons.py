"""Fig. 10 — abort-reason percentages at 2 threads.

Paper shape: the HTMLock mechanism eliminates ``mutex`` aborts entirely
(the fallback path no longer kills subscribers), and switchingMode
sharply reduces ``of`` (capacity) aborts by converting them into STL
switches.
"""

from conftest import once

from repro.harness.experiments import fig10_abort_reasons, print_fig10


def test_fig10_abort_reasons(benchmark, ctx, publish):
    data = once(benchmark, lambda: fig10_abort_reasons(ctx))
    publish("fig10_abort_reasons", print_fig10(ctx))

    # HTMLock removes mutex aborts on every workload.
    for wl, per_system in data.items():
        assert per_system["LockillerTM-RWIL"]["mutex"] == 0.0, wl
        assert per_system["LockillerTM"]["mutex"] == 0.0, wl

    # switchingMode reduces the capacity-abort share where overflow is
    # the dominant pathology.
    lab = data["labyrinth"]
    assert lab["LockillerTM"]["of"] <= lab["LockillerTM-RWIL"]["of"]

    # Baseline yada aborts are dominated by exceptions.
    assert data["yada"]["Baseline"]["fault"] > 0.3
