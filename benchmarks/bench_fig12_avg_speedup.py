"""Fig. 12 — average speedup of the evaluated systems vs CGL.

Paper headline: LockillerTM averages 1.86x over requester-wins
best-effort HTM and 1.57x over LosaTM-SAFU (state of the art) at the
typical cache size.  The reproduced shape to check: LockillerTM > every
recovery-only variant > Baseline, and LockillerTM > LosaTM-SAFU.
"""

from conftest import once

from repro.harness.experiments import (
    fig12_avg_speedup,
    headline_ratios,
    print_fig12,
)


def test_fig12_avg_speedup(benchmark, ctx, publish):
    def experiment():
        return fig12_avg_speedup(ctx), headline_ratios(ctx)

    data, heads = once(benchmark, experiment)
    publish("fig12_avg_speedup", print_fig12(ctx))

    hi = max(ctx.threads)
    assert data["LockillerTM"][hi] > data["Baseline"][hi]
    assert data["LockillerTM"][hi] >= data["LosaTM-SAFU"][hi] * 0.95
    assert data["LockillerTM-RWI"][hi] > data["Baseline"][hi]
    # Headline ratios: direction must match (paper: 1.86x / 1.57x).
    assert heads["vs Baseline"] > 1.2
    assert heads["vs LosaTM-SAFU"] > 1.0
    benchmark.extra_info["vs_baseline"] = round(heads["vs Baseline"], 3)
    benchmark.extra_info["vs_losatm"] = round(heads["vs LosaTM-SAFU"], 3)
