"""Extension — the §IV-A protocol decision: two-level vs three-level.

The paper started from gem5's MESI-Three-Level-HTM (a private middle
cache maintaining transactional data, with the odd L1-flush-on-remote-
load behaviour) and replaced it with a streamlined two-level protocol.
This bench quantifies the decision: the middle cache absorbs capacity
overflows (labyrinth) at the price of slower private hits and protocol
complexity — while LockillerTM's switchingMode recovers the
overflow-tolerance on the *simple* two-level protocol.
"""

from conftest import once

from repro.common.params import three_level_params, typical_params
from repro.common.stats import AbortReason
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

CASES = (
    ("Baseline / two-level", "Baseline", typical_params),
    ("Baseline / three-level", "Baseline", three_level_params),
    ("LockillerTM / two-level", "LockillerTM", typical_params),
)


def test_ext_three_level(benchmark, ctx, publish):
    th = min(8, max(ctx.threads))

    def experiment():
        out = {}
        for label, system, params_fn in CASES:
            stats = run_workload(
                get_workload("labyrinth"),
                RunConfig(
                    spec=get_system(system),
                    threads=th,
                    scale=ctx.scale,
                    seed=ctx.seed,
                    params=params_fn(),
                ),
            )
            merged = stats.merged()
            out[label] = {
                "cycles": stats.execution_cycles,
                "of_aborts": merged.aborts[AbortReason.OVERFLOW],
                "l2_hits": merged.l2_hits,
                "switched": merged.commits_switched,
                "commit_rate": stats.commit_rate,
            }
        return out

    data = once(benchmark, experiment)
    lines = [f"Extension: protocol levels on labyrinth, {th} threads"]
    for label, row in data.items():
        lines.append(
            f"  {label:26s} cycles={row['cycles']:9d} "
            f"of={row['of_aborts']:4d} l2hits={row['l2_hits']:6d} "
            f"switched={row['switched']:3d} commit={row['commit_rate']:.2f}"
        )
    publish("ext_three_level", "\n".join(lines))

    two = data["Baseline / two-level"]
    three = data["Baseline / three-level"]
    lk = data["LockillerTM / two-level"]
    # The middle cache absorbs capacity overflows...
    assert three["of_aborts"] < two["of_aborts"]
    assert three["l2_hits"] > 0
    # ... and LockillerTM recovers the overflow-tolerance on the simple
    # protocol via switchingMode + HTMLock coexistence.
    assert lk["switched"] > 0
    assert lk["cycles"] < two["cycles"]
