"""Table II — evaluated systems (registry self-check + smoke runs).

Regenerates the system table and runs one tiny workload on every
configuration to prove each composes into a working machine.
"""

from conftest import once

from repro.harness.experiments import table2_systems
from repro.harness.systems import TABLE_ORDER, get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def test_table2_systems(benchmark, publish):
    def smoke_all():
        results = {}
        for name in TABLE_ORDER:
            stats = run_workload(
                get_workload("kmeans-"),
                RunConfig(
                    spec=get_system(name), threads=2, scale=0.05, seed=1
                ),
            )
            results[name] = stats.execution_cycles
        return results

    results = once(benchmark, smoke_all)
    assert set(results) == set(TABLE_ORDER)
    assert all(c > 0 for c in results.values())
    text = table2_systems() + "\n\nsmoke run (kmeans-, 2 threads): " + ", ".join(
        f"{k}={v}" for k, v in results.items()
    )
    publish("table2_systems", text)
