"""Fig. 9 — execution-time breakdown + commit rate at max threads.

Paper shape (32 threads, HTMLock ablation RWI vs RWL vs RWIL): the
HTMLock mechanism collapses ``waitlock`` time on genome / vacation± /
intruder by letting lock transactions run concurrently with HTM
transactions, and lifts commit rates because transactions that do not
conflict with the lock transaction now survive.
"""

from conftest import once

from repro.harness.experiments import (
    FIG9_SYSTEMS,
    fig9_breakdown32,
    print_fig9,
)


def test_fig9_breakdown32(benchmark, ctx, publish):
    data = once(benchmark, lambda: fig9_breakdown32(ctx))
    publish("fig09_breakdown32", print_fig9(ctx))

    assert set(data) == set(ctx.workloads)
    for wl, per_system in data.items():
        assert set(per_system) == set(FIG9_SYSTEMS)
        for entry in per_system.values():
            assert abs(sum(entry["fractions"].values()) - 1.0) < 1e-9

    # HTMLock shrinks aggregate waiting on the fallback-heavy workloads.
    heavy = [w for w in ("vacation+", "labyrinth", "genome") if w in data]
    rwi_wait = sum(
        data[w]["LockillerTM-RWI"]["fractions"]["waitlock"] for w in heavy
    )
    rwil_wait = sum(
        data[w]["LockillerTM-RWIL"]["fractions"]["waitlock"] for w in heavy
    )
    assert rwil_wait < rwi_wait
