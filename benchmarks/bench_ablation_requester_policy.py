"""Ablation — the three requester-side reject reactions (§III-A).

The recovery mechanism leaves the rejected requester three options:
abort itself (RAI), pause-and-retry (RRI), or park until woken (RWI).
This bench compares them on the two most contended workloads and checks
the paper's ordering: the work-preserving policies (RRI/RWI) commit more
than SelfAbort, and all three beat requester-wins.
"""

from conftest import once

from repro.common.stats import geometric_mean


POLICY_SYSTEMS = (
    "Baseline",
    "LockillerTM-RAI",
    "LockillerTM-RRI",
    "LockillerTM-RWI",
)
WORKLOADS = ("intruder", "kmeans+", "vacation+")


def test_ablation_requester_policy(benchmark, ctx, publish):
    th = max(ctx.threads)

    def experiment():
        out = {}
        for system in POLICY_SYSTEMS:
            cycles, rates, rejects, aborts = [], [], 0, 0
            for wl in WORKLOADS:
                stats = ctx.run(wl, system, th)
                cgl = ctx.run(wl, "CGL", th)
                cycles.append(cgl.execution_cycles / stats.execution_cycles)
                rates.append(stats.commit_rate)
                merged = stats.merged()
                rejects += merged.rejects_received
                aborts += merged.total_aborts
            out[system] = {
                "speedup": geometric_mean(cycles),
                "commit_rate": sum(rates) / len(rates),
                "rejects": rejects,
                "aborts": aborts,
            }
        return out

    data = once(benchmark, experiment)

    lines = [f"Ablation: requester policy on {WORKLOADS}, {th} threads"]
    for system, row in data.items():
        lines.append(
            f"  {system:18s} speedup={row['speedup']:.2f}x "
            f"commit={row['commit_rate']:.2f} rejects={row['rejects']} "
            f"aborts={row['aborts']}"
        )
    publish("ablation_requester_policy", "\n".join(lines))

    base = data["Baseline"]
    for system in POLICY_SYSTEMS[1:]:
        assert data[system]["commit_rate"] > base["commit_rate"], system
        assert data[system]["speedup"] > base["speedup"] * 0.95, system
    # Rejection-based policies preserve work better than self-abort.
    assert data["LockillerTM-RWI"]["aborts"] <= data["LockillerTM-RAI"]["aborts"]
