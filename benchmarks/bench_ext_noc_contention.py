"""Extension — validate the no-NoC-contention simplification.

DESIGN.md prices messages by hop latency only and argues directory-bank
serialization dominates queueing for STAMP at 32 cores.  This bench arms
the opt-in per-link contention model and re-runs a representative slice
of Fig. 12, asserting the paper-shape conclusions (system ordering) are
insensitive to the simplification.
"""

from dataclasses import replace

from conftest import once

from repro.common.params import typical_params
from repro.common.stats import geometric_mean
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

WORKLOADS = ("intruder", "vacation+", "kmeans+")
SYSTEMS = ("Baseline", "LockillerTM-RWI", "LockillerTM")


def test_ext_noc_contention(benchmark, ctx, publish):
    th = min(8, max(ctx.threads))
    base = typical_params()
    contended = replace(
        base, network=replace(base.network, model_contention=True)
    )

    def experiment():
        out = {}
        for tag, params in (("hop-latency", base), ("link-contention", contended)):
            out[tag] = {}
            for system in SYSTEMS:
                speedups = []
                for wl in WORKLOADS:
                    cgl = run_workload(
                        get_workload(wl),
                        RunConfig(spec=get_system("CGL"), threads=th,
                                  scale=ctx.scale, seed=ctx.seed,
                                  params=params),
                    )
                    s = run_workload(
                        get_workload(wl),
                        RunConfig(spec=get_system(system), threads=th,
                                  scale=ctx.scale, seed=ctx.seed,
                                  params=params),
                    )
                    speedups.append(
                        cgl.execution_cycles / s.execution_cycles
                    )
                out[tag][system] = geometric_mean(speedups)
        return out

    data = once(benchmark, experiment)
    lines = [f"Extension: NoC contention sensitivity ({WORKLOADS}, {th} threads)"]
    for tag, per_system in data.items():
        for system, speedup in per_system.items():
            lines.append(f"  {tag:15s} {system:18s} {speedup:.2f}x vs CGL")
    publish("ext_noc_contention", "\n".join(lines))

    # The ordering Baseline < RWI <= LockillerTM holds in both models.
    for tag in data:
        assert data[tag]["LockillerTM-RWI"] > data[tag]["Baseline"] * 0.95
        assert data[tag]["LockillerTM"] >= data[tag]["LockillerTM-RWI"] * 0.9
    # And every system still beats CGL either way.
    for tag in data:
        for system, speedup in data[tag].items():
            assert speedup > 1.0, (tag, system)
