"""Table I — system model parameters (configuration self-check).

Regenerates the parameter table and times a cold machine construction,
verifying the modeled hardware matches the paper's Table I exactly.
"""

from conftest import once

from repro.common.params import typical_params
from repro.harness.experiments import table1_parameters
from repro.harness.systems import get_system
from repro.sim.machine import Machine


def test_table1_parameters(benchmark, publish):
    def build():
        params = typical_params()
        machine = Machine(params, get_system("Baseline"), [[] for _ in range(32)])
        return params, machine

    params, machine = once(benchmark, build)
    assert params.num_cores == 32
    assert machine.topology.num_tiles == 32
    assert params.l1.num_sets == 128 and params.l1.assoc == 4
    assert params.llc.num_sets == 8192 and params.llc.assoc == 16
    publish("table1_config", table1_parameters(params))
