"""Simulator throughput microbenchmarks (true repeated-timing benches).

Unlike the figure benches (one-shot experiments), these measure the
simulator's own hot paths with pytest-benchmark's statistics: raw event
dispatch, the L1-hit fast path, the full directory miss path, and an
end-to-end simulated-cycles-per-second figure.  Useful for keeping the
reproduction usable as it evolves (the profiling-first HPC workflow).
"""

from repro.common.params import typical_params
from repro.harness.systems import get_system
from repro.sim.engine import SimEngine
from repro.sim.machine import Machine
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def test_engine_event_dispatch(benchmark):
    def dispatch_10k():
        engine = SimEngine()
        count = [0]

        def tick(t):
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule_after(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return count[0]

    assert benchmark(dispatch_10k) == 10_000


def test_l1_hit_fast_path(benchmark):
    machine = Machine(
        typical_params(), get_system("Baseline"), [[] for _ in range(4)]
    )
    ms = machine.memsys
    ms.access(0, 64, True, 0)  # warm the line

    def hit_1k():
        total = 0
        for _ in range(1000):
            total += ms.access(0, 64, True, 0).latency
        return total

    assert benchmark(hit_1k) == 1000 * typical_params().l1.hit_latency


def test_directory_miss_path(benchmark):
    machine = Machine(
        typical_params(), get_system("LockillerTM"), [[] for _ in range(4)]
    )
    ms = machine.memsys
    state = {"line": 0}

    def misses_256():
        total = 0
        for _ in range(256):
            state["line"] += 1
            total += ms.access(0, state["line"] << 6, False, 0).latency
        return total

    assert benchmark(misses_256) > 0


def test_end_to_end_simulation_rate(benchmark):
    def one_run():
        stats = run_workload(
            get_workload("vacation-"),
            RunConfig(
                spec=get_system("LockillerTM"), threads=4, scale=0.1, seed=1
            ),
        )
        return stats.execution_cycles

    cycles = benchmark(one_run)
    assert cycles > 0
    benchmark.extra_info["simulated_cycles"] = cycles


def test_end_to_end_with_telemetry(benchmark):
    """Same cell as above with a full telemetry session attached.

    Compare against ``test_end_to_end_simulation_rate`` to read off the
    observability overhead (docs/OBSERVABILITY.md records the budget:
    telemetry-off must be within noise, telemetry-on is the price of
    the event wraps + span building).
    """
    from repro.telemetry import Telemetry

    def one_run():
        tel = Telemetry()
        stats = run_workload(
            get_workload("vacation-"),
            RunConfig(
                spec=get_system("LockillerTM"),
                threads=4,
                scale=0.1,
                seed=1,
                telemetry=tel,
            ),
        )
        return stats.execution_cycles, len(tel.registry)

    (cycles, metrics) = benchmark(one_run)
    assert cycles > 0
    assert metrics > 0
    benchmark.extra_info["simulated_cycles"] = cycles
    benchmark.extra_info["metrics_published"] = metrics
