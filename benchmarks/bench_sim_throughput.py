"""Simulator throughput microbenchmarks (true repeated-timing benches).

Unlike the figure benches (one-shot experiments), these measure the
simulator's own hot paths with pytest-benchmark's statistics: raw event
dispatch, the L1-hit fast path, the full directory miss path, and an
end-to-end simulated-cycles-per-second figure.  Useful for keeping the
reproduction usable as it evolves (the profiling-first HPC workflow).
"""

from repro.common.params import typical_params
from repro.harness.systems import get_system
from repro.sim.engine import SimEngine
from repro.sim.machine import Machine
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def test_engine_event_dispatch(benchmark):
    def dispatch_10k():
        engine = SimEngine()
        count = [0]

        def tick(t):
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule_after(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return count[0]

    assert benchmark(dispatch_10k) == 10_000


def test_l1_hit_fast_path(benchmark):
    machine = Machine(
        typical_params(), get_system("Baseline"), [[] for _ in range(4)]
    )
    ms = machine.memsys
    ms.access(0, 64, True, 0)  # warm the line

    def hit_1k():
        total = 0
        for _ in range(1000):
            total += ms.access(0, 64, True, 0).latency
        return total

    assert benchmark(hit_1k) == 1000 * typical_params().l1.hit_latency


def test_directory_miss_path(benchmark):
    machine = Machine(
        typical_params(), get_system("LockillerTM"), [[] for _ in range(4)]
    )
    ms = machine.memsys
    state = {"line": 0}

    def misses_256():
        total = 0
        for _ in range(256):
            state["line"] += 1
            total += ms.access(0, state["line"] << 6, False, 0).latency
        return total

    assert benchmark(misses_256) > 0


def _engine_counts(workload, config):
    """One extra (uncounted) run to attribute events for extra_info."""
    build = get_workload(workload).build(
        config.threads, config.scale, config.seed
    )
    machine = Machine(config.params, config.spec, build.programs,
                      seed=config.seed)
    machine.run()
    eng = machine.engine
    return eng.events_processed, eng.ring_events, eng.heap_events


def test_end_to_end_simulation_rate(benchmark):
    config = RunConfig(
        spec=get_system("LockillerTM"), threads=4, scale=0.1, seed=1
    )

    def one_run():
        stats = run_workload(get_workload("vacation-"), config)
        return stats.execution_cycles

    cycles = benchmark(one_run)
    assert cycles > 0
    events, ring, heap = _engine_counts("vacation-", config)
    benchmark.extra_info["simulated_cycles"] = cycles
    benchmark.extra_info["events_processed"] = events
    benchmark.extra_info["ring_events"] = ring
    benchmark.extra_info["heap_events"] = heap
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["simulated_cycles_per_second"] = round(
            cycles / benchmark.stats.stats.mean
        )


def test_end_to_end_fresh_build(benchmark):
    """The e2e cell with every reuse layer disabled.

    This is the pre-PR 7 configuration — a fresh WorkloadBuild (full
    generator RNG stream) and a fresh Machine every run.  Contrast with
    ``test_end_to_end_simulation_rate`` (which uses the default shared
    build cache and global machine pool) to read off the combined
    per-run cost that structural reuse removes from sweeps.
    """
    config = RunConfig(
        spec=get_system("LockillerTM"),
        threads=4,
        scale=0.1,
        seed=1,
        share_build=False,
        machine_pool=False,
    )

    def one_run():
        stats = run_workload(get_workload("vacation-"), config)
        return stats.execution_cycles

    assert benchmark(one_run) > 0


def test_end_to_end_pooled_machine(benchmark):
    """The e2e cell on a private pool with observable counters.

    Performance-wise this matches ``test_end_to_end_simulation_rate``
    (which uses the process-global pool by default); the private pool
    lets the bench assert reuse actually happened and publish the
    build/reuse counts as extra_info.
    """
    from repro.sim.pool import MachinePool

    pool = MachinePool()
    config = RunConfig(
        spec=get_system("LockillerTM"),
        threads=4,
        scale=0.1,
        seed=1,
        machine_pool=pool,
    )

    def one_run():
        stats = run_workload(get_workload("vacation-"), config)
        return stats.execution_cycles

    one_run()  # prime the pool so even a single timed call is a reuse
    assert benchmark(one_run) > 0
    assert pool.reuses > 0
    benchmark.extra_info["pool_builds"] = pool.builds
    benchmark.extra_info["pool_reuses"] = pool.reuses


def test_end_to_end_with_telemetry(benchmark):
    """Same cell as above with a full telemetry session attached.

    Compare against ``test_end_to_end_simulation_rate`` to read off the
    observability overhead (docs/OBSERVABILITY.md records the budget:
    telemetry-off must be within noise, telemetry-on is the price of
    the event wraps + span building).
    """
    from repro.telemetry import Telemetry

    def one_run():
        tel = Telemetry()
        stats = run_workload(
            get_workload("vacation-"),
            RunConfig(
                spec=get_system("LockillerTM"),
                threads=4,
                scale=0.1,
                seed=1,
                telemetry=tel,
            ),
        )
        return stats.execution_cycles, len(tel.registry)

    (cycles, metrics) = benchmark(one_run)
    assert cycles > 0
    assert metrics > 0
    benchmark.extra_info["simulated_cycles"] = cycles
    benchmark.extra_info["metrics_published"] = metrics
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["simulated_cycles_per_second"] = round(
            cycles / benchmark.stats.stats.mean
        )


def test_compute_burst_throughput(benchmark):
    """Burst-heavy compute-bound case: long ALU runs, few memops.

    The coalescing win shows here undiluted — each transaction is
    dominated by OP_COMPUTE chains the builder folds into single
    engine events, so events-per-simulated-cycle is far below the
    memory-bound cases above.
    """
    from repro.htm.isa import Plain, Txn, compute, load, store

    def build_programs(threads=4, txs=40):
        programs = []
        for t in range(threads):
            prog = []
            for i in range(txs):
                ops = [compute(20)]
                for k in range(12):
                    ops.append(compute(5 + (k % 7)))
                ops.append(load((t * 4096 + i) << 6))
                ops.append(compute(30))
                ops.append(store((16384 + (i % 64)) << 6, 1))
                ops.append(compute(15))
                prog.append(Txn(ops, tag=f"burst-{t}-{i}"))
                prog.append(Plain([compute(25)]))
            programs.append(prog)
        return programs

    programs = build_programs()
    spec = get_system("LockillerTM")
    params = typical_params()

    def one_run():
        machine = Machine(params, spec, programs, seed=7)
        cycles = machine.run()
        return cycles, machine.engine.events_processed

    cycles, events = benchmark(one_run)
    assert cycles > 0
    benchmark.extra_info["simulated_cycles"] = cycles
    benchmark.extra_info["events_processed"] = events
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["simulated_cycles_per_second"] = round(
            cycles / benchmark.stats.stats.mean
        )
