"""Ring-span sweep: time the e2e cell at several near-future spans.

The calendar ring captures events whose delay from ``now`` is under the
span; everything else pays the heap.  PR 7 measured that with the
original 64-cycle span ~88% of e2e events routed via the heap (directory
round trips land just past 64 cycles), so the span is now a
:class:`~repro.sim.engine.SimEngine` parameter and this script measures
the candidates head-to-head on the standard e2e cell (vacation- /
LockillerTM / 4 threads / scale 0.1 / seed 1).

Run::

    PYTHONPATH=src python benchmarks/bench_ring_span.py [--spans 64,128,256]

Prints per-span median wall time plus the ring/heap event split, and
names the winner.  The winner is committed as the module default
``repro.sim.engine.RING_SPAN``; re-run this after changing protocol
timings to revalidate the choice.
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.harness.systems import get_system
from repro.sim.machine import Machine
from repro.workloads.registry import get_workload

THREADS = 4
SCALE = 0.1
SEED = 1


def time_span(build, spec, params, span: int, rounds: int):
    """Median wall time (s) plus event-tier split for one span."""
    times = []
    ring = heap = cycles = 0
    for _ in range(rounds):
        machine = Machine(
            params, spec, build.programs, seed=SEED, ring_span=span
        )
        t0 = time.perf_counter()
        cycles = machine.run()
        times.append(time.perf_counter() - t0)
        ring = machine.engine.ring_events
        heap = machine.engine.heap_events
    return statistics.median(times), ring, heap, cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spans", default="64,128,256")
    parser.add_argument("--rounds", type=int, default=7)
    args = parser.parse_args()
    spans = [int(s) for s in args.spans.split(",")]

    from repro.common.params import typical_params

    params = typical_params()
    spec = get_system("LockillerTM")
    build = get_workload("vacation-").build(THREADS, SCALE, SEED)

    print(f"e2e cell: vacation-/LockillerTM/{THREADS}t/scale {SCALE}/seed {SEED}")
    print(f"{'span':>6}  {'median ms':>10}  {'ring':>8}  {'heap':>8}  {'heap %':>6}")
    results = []
    baseline_cycles = None
    for span in spans:
        med, ring, heap, cycles = time_span(
            build, spec, params, span, args.rounds
        )
        if baseline_cycles is None:
            baseline_cycles = cycles
        elif cycles != baseline_cycles:
            raise SystemExit(
                f"span {span} changed simulated cycles "
                f"({cycles} != {baseline_cycles}) — ring span must be "
                "timing-invisible"
            )
        total = ring + heap
        print(
            f"{span:>6}  {med * 1e3:>10.3f}  {ring:>8}  {heap:>8}  "
            f"{100.0 * heap / total:>5.1f}%"
        )
        results.append((med, span))
    best = min(results)
    print(f"winner: span {best[1]} ({best[0] * 1e3:.3f} ms median)")


if __name__ == "__main__":
    main()
