"""Ablation — the user-defined priority policy (§III-A, §IV-B(d)).

Holds recovery + WaitWakeup + HTMLock fixed and varies only the priority
that conflicts are arbitrated on:

* insts-based (LockillerTM-RWIL) — the paper's choice,
* none/id-tiebreak (LockillerTM-RWL),
* progression-based (a LosaTM-style variant, built ad hoc here).

Paper claim: "the insts-based priority is more representative than the
progression-based priority used by LosaTM" — it should win or tie on the
contended workloads.
"""

from conftest import once

from repro.common.stats import geometric_mean
from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

PROGRESSION_SPEC = SystemSpec(
    name="RWPL-progression",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.PROGRESSION,
    htmlock=True,
)

WORKLOADS = ("intruder", "kmeans+", "vacation+")


def test_ablation_priority_kind(benchmark, ctx, publish):
    th = max(ctx.threads)

    def experiment():
        out = {}
        for label, system in (
            ("insts (RWIL)", "LockillerTM-RWIL"),
            ("none (RWL)", "LockillerTM-RWL"),
        ):
            speedups = []
            for wl in WORKLOADS:
                cgl = ctx.run(wl, "CGL", th)
                s = ctx.run(wl, system, th)
                speedups.append(cgl.execution_cycles / s.execution_cycles)
            out[label] = geometric_mean(speedups)
        speedups = []
        for wl in WORKLOADS:
            cgl = ctx.run(wl, "CGL", th)
            s = run_workload(
                get_workload(wl),
                RunConfig(
                    spec=PROGRESSION_SPEC,
                    threads=th,
                    scale=ctx.scale,
                    seed=ctx.seed,
                ),
            )
            speedups.append(cgl.execution_cycles / s.execution_cycles)
        out["progression"] = geometric_mean(speedups)
        return out

    data = once(benchmark, experiment)
    lines = [f"Ablation: priority kind on {WORKLOADS}, {th} threads"]
    for label, speedup in data.items():
        lines.append(f"  {label:16s} geomean speedup vs CGL = {speedup:.2f}x")
    publish("ablation_priority", "\n".join(lines))

    # Insts-based is the strongest (or statistically tied) variant.
    assert data["insts (RWIL)"] >= data["none (RWL)"] * 0.9
    assert data["insts (RWIL)"] >= data["progression"] * 0.9
