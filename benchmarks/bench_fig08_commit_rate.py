"""Fig. 8 — average transaction commit rate of the recovery systems.

Paper shape: adding the recovery mechanism + insts-based priority lifts
the average commit rate well above requester-wins (the paper reports
1.4x / 1.69x / 1.63x for RAI / RRI / RWI); the gap widens with thread
count as friendly fire intensifies.
"""

from conftest import once

from repro.harness.experiments import fig8_commit_rate, print_fig8


def test_fig8_commit_rate(benchmark, ctx, publish):
    data = once(benchmark, lambda: fig8_commit_rate(ctx))
    publish("fig08_commit_rate", print_fig8(ctx))

    hi = max(ctx.threads)
    base = data["Baseline"][hi]
    for system in ("LockillerTM-RAI", "LockillerTM-RRI", "LockillerTM-RWI"):
        assert data[system][hi] > base, system
    # The reject-and-keep-working policies beat self-abort at high
    # contention (the paper's ordering).
    assert data["LockillerTM-RWI"][hi] >= data["LockillerTM-RAI"][hi]
    assert data["LockillerTM-RRI"][hi] >= data["LockillerTM-RAI"][hi]
