"""Fig. 11 — execution-time breakdown with the switchLock category,
2 threads.

Paper shape: under LockillerTM (vs RWIL) a new ``switchLock`` slice
appears — transactions that proactively switched to HTMLock mode keep
their work — and commit rates rise on the overflow-prone workloads
(labyrinth, yada), shrinking wasted transaction time.
"""

from conftest import once

from repro.harness.experiments import (
    FIG11_SYSTEMS,
    fig11_breakdown2,
    print_fig11,
)


def test_fig11_breakdown2(benchmark, ctx, publish):
    data = once(benchmark, lambda: fig11_breakdown2(ctx))
    publish("fig11_breakdown2", print_fig11(ctx))

    for wl, per_system in data.items():
        assert set(per_system) == set(FIG11_SYSTEMS)
        # RWIL has no switchingMode, so no switchLock time at all.
        assert per_system["LockillerTM-RWIL"]["fractions"]["switchLock"] == 0.0

    # The switchLock category materializes where overflows dominate.
    overflowy = [w for w in ("labyrinth", "yada") if w in data]
    assert any(
        data[w]["LockillerTM"]["fractions"]["switchLock"] > 0 for w in overflowy
    )
    # ... and commit rate does not regress there.
    for w in overflowy:
        assert (
            data[w]["LockillerTM"]["commit_rate"]
            >= data[w]["LockillerTM-RWIL"]["commit_rate"] - 1e-9
        )
