"""Ablation — LLC overflow-signature size (§III-B design choice).

The HTMLock mechanism spills overflowed set entries into two Bloom
signatures.  Undersized signatures saturate on labyrinth's ~300-line
footprints and false-positively reject *every* concurrent request,
serializing the machine; the paper's sizing keeps false positives
negligible.  Sweeps the signature width on small caches where spills
dominate.
"""

from dataclasses import replace

from conftest import once

from repro.common.params import small_cache_params
from repro.sim.runner import RunConfig, run_workload
from repro.harness.systems import get_system
from repro.workloads.registry import get_workload

SIG_BITS = (64, 512, 4096)


def test_ablation_signature_size(benchmark, ctx, publish):
    def experiment():
        out = {}
        for bits in SIG_BITS:
            base = small_cache_params()
            params = replace(base, htm=replace(base.htm, signature_bits=bits))
            stats = run_workload(
                get_workload("labyrinth"),
                RunConfig(
                    spec=get_system("LockillerTM"),
                    threads=4,
                    scale=ctx.scale,
                    seed=ctx.seed,
                    params=params,
                ),
            )
            merged = stats.merged()
            out[bits] = {
                "cycles": stats.execution_cycles,
                "rejects": merged.rejects_received,
                "commit_rate": stats.commit_rate,
            }
        return out

    data = once(benchmark, experiment)
    lines = ["Ablation: signature bits on labyrinth, 8KB L1, 4 threads"]
    for bits, row in data.items():
        lines.append(
            f"  {bits:5d} bits  cycles={row['cycles']:9d} "
            f"rejects={row['rejects']:6d} commit={row['commit_rate']:.2f}"
        )
    publish("ablation_signature", "\n".join(lines))

    # A saturated 64-bit signature must cause (weakly) more rejects than
    # the 4096-bit one, and must not be faster.
    assert data[64]["rejects"] >= data[4096]["rejects"]
    assert data[64]["cycles"] >= data[4096]["cycles"] * 0.95
