"""Fig. 7 — per-workload speedup of every evaluated system vs CGL.

Paper shape: LockillerTM outperforms coarse-grained locking on every
workload and thread count except yada; the recovery systems already lift
the baseline substantially; HTMLock adds most on fallback-heavy
workloads.
"""

from conftest import once

from repro.harness.experiments import fig7_speedup_grid, print_fig7


def test_fig7_speedup_grid(benchmark, ctx, publish):
    grid = once(benchmark, lambda: fig7_speedup_grid(ctx))
    publish("fig07_speedup_grid", print_fig7(ctx))

    full = {
        wl: grid[wl]["LockillerTM"] for wl in grid
    }
    # LockillerTM beats CGL everywhere except yada (the paper's claim).
    for wl, series in full.items():
        if wl == "yada":
            continue
        for th, speedup in series.items():
            assert speedup > 1.0, (wl, th, speedup)
    # yada is the concession: no better than ~parity anywhere.
    assert min(full["yada"].values()) < 1.0 or max(full["yada"].values()) < 1.6
    # LockillerTM >= Baseline on the overwhelming majority of cells.
    wins = sum(
        grid[wl]["LockillerTM"][th] >= grid[wl]["Baseline"][th] * 0.98
        for wl in grid
        for th in ctx.threads
    )
    total = len(grid) * len(ctx.threads)
    assert wins >= 0.8 * total
