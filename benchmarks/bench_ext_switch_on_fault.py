"""Extension — switchingMode on exceptions (§III-C's deferred design).

The paper declines to switch on exceptions, citing CPU-validation cost
and security concerns, and yada pays for it: most of its transactions
fault and serialize on the fallback lock after a wasted attempt.  This
bench evaluates the deferred design (``LockillerTM-XF``): fault-bound
transactions apply for an STL switch and take the trap non-speculatively
while keeping their work.
"""

from conftest import once

from repro.common.stats import AbortReason
from repro.core.extensions import SWITCH_ON_FAULT_SPEC
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def test_ext_switch_on_fault(benchmark, ctx, publish):
    th = min(8, max(ctx.threads))

    def experiment():
        out = {}
        for label, spec in (
            ("LockillerTM", get_system("LockillerTM")),
            ("LockillerTM-XF", SWITCH_ON_FAULT_SPEC),
        ):
            stats = run_workload(
                get_workload("yada"),
                RunConfig(
                    spec=spec, threads=th, scale=ctx.scale, seed=ctx.seed
                ),
            )
            merged = stats.merged()
            out[label] = {
                "cycles": stats.execution_cycles,
                "fault_aborts": merged.aborts[AbortReason.FAULT],
                "switched": merged.commits_switched,
                "commit_rate": stats.commit_rate,
            }
        return out

    data = once(benchmark, experiment)
    lines = [f"Extension: switching on exceptions (yada, {th} threads)"]
    for label, row in data.items():
        lines.append(
            f"  {label:16s} cycles={row['cycles']:9d} "
            f"fault_aborts={row['fault_aborts']:5d} "
            f"switched={row['switched']:4d} commit={row['commit_rate']:.2f}"
        )
    speedup = data["LockillerTM"]["cycles"] / data["LockillerTM-XF"]["cycles"]
    lines.append(f"  switch-on-fault speedup on yada: {speedup:.2f}x")
    publish("ext_switch_on_fault", "\n".join(lines))

    assert data["LockillerTM-XF"]["fault_aborts"] < data["LockillerTM"]["fault_aborts"]
    assert data["LockillerTM-XF"]["switched"] > data["LockillerTM"]["switched"]
    assert data["LockillerTM-XF"]["commit_rate"] >= data["LockillerTM"]["commit_rate"]
