"""Fig. 13 — cache-size sensitivity (8KB/1MB and 128KB/32MB configs).

Paper shape: LockillerTM's average speedup beats both CGL and
requester-wins best-effort HTM in the small *and* large configurations;
the margin over the baseline is largest in the small-cache, many-thread
corner (the paper's extreme scenario reports up to 7.79x vs Baseline and
6.73x vs LosaTM-SAFU on high-contention workloads).
"""

from conftest import once

from repro.harness.experiments import (
    extreme_scenario,
    fig13_cache_sensitivity,
    print_fig13,
)


def test_fig13_cache_sensitivity(benchmark, ctx, publish):
    def experiment():
        return fig13_cache_sensitivity(ctx), extreme_scenario(ctx)

    data, ext = once(benchmark, experiment)
    publish("fig13_cache_sensitivity", print_fig13(ctx))

    hi = max(ctx.threads)
    for label, per_system in data.items():
        # LockillerTM >= baseline HTM on geomean in every configuration.
        assert (
            per_system["LockillerTM"][hi]
            >= per_system["Baseline"][hi] * 0.98
        ), label
    # The paper's amplification claim lives in the high-contention,
    # small-cache corner: the extreme ratio must clearly exceed the
    # all-workload geomean gap at the same thread count.
    small = data["small (8KB/1MB)"]
    geomean_gap_small = small["LockillerTM"][hi] / small["Baseline"][hi]
    assert ext["max vs Baseline"] > geomean_gap_small
    # Extreme corner: clearly super-unit speedups over Baseline.
    assert ext["max vs Baseline"] > 1.5
    benchmark.extra_info["extreme_vs_baseline"] = round(
        ext["max vs Baseline"], 3
    )
    benchmark.extra_info["extreme_vs_losatm"] = round(
        ext["max vs LosaTM-SAFU"], 3
    )
